package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// LoadSpec decodes one Scenario from a JSON spec. The schema is the
// Scenario struct's JSON tags; unknown fields are rejected so typos
// ("trails": 30) fail loudly instead of silently running defaults. The
// decoded scenario is validated, so a spec with an unknown system, a
// malformed grid or an out-of-range fault knob never reaches a workload.
func LoadSpec(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("scenario spec: %v", err)
	}
	// A second document in the stream means the file is not one spec.
	if dec.More() {
		return Scenario{}, fmt.Errorf("scenario spec: trailing data after the scenario object")
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// LoadSpecFile reads and decodes a JSON spec from disk.
func LoadSpecFile(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	sc, err := LoadSpec(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %v", path, err)
	}
	return sc, nil
}

// SaveSpec renders a scenario as an indented JSON spec that LoadSpec
// round-trips exactly — `odpsim show <name>` uses it to export registry
// entries as editable starting points.
func SaveSpec(sc Scenario) ([]byte, error) {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// IsSpecPath reports whether a run argument names a spec file rather
// than a registered scenario (`odpsim run sweep.json` vs
// `odpsim run fig4`).
func IsSpecPath(arg string) bool {
	return strings.HasSuffix(arg, ".json") || strings.ContainsAny(arg, "/\\")
}
