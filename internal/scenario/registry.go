package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Workload is one experiment family behind the scenario layer. The
// micro-benchmark sweeps in internal/core, the applications in
// internal/apps/{argodsm,sparkucx,kvstore} and internal/perftest each
// implement it and register themselves at init time, the way image
// codecs register decoders.
//
// Run must be deterministic for a fixed resolved scenario: derive every
// trial/point seed from its grid position (internal/parallel's
// contract), never from execution order or wall-clock state, so the
// rendered bytes are reproducible for any -j and diffable against
// results/.
type Workload interface {
	// Kind is the registry key, e.g. "exec-sweep".
	Kind() string
	// Validate rejects scenario fields the workload cannot honour (e.g.
	// zero trials on an averaging sweep).
	Validate(sc *Scenario) error
	// Run executes the resolved scenario and renders to out.
	Run(sc *Scenario, out *Output) error
}

var workloads = map[string]Workload{}

// RegisterWorkload adds a workload kind. It panics on duplicates —
// registration happens in package init functions, where a clash is a
// programming error.
func RegisterWorkload(w Workload) {
	if _, dup := workloads[w.Kind()]; dup {
		panic(fmt.Sprintf("scenario: duplicate workload kind %q", w.Kind()))
	}
	workloads[w.Kind()] = w
}

// LookupWorkload returns the registered workload of the given kind.
func LookupWorkload(kind string) (Workload, error) {
	w, ok := workloads[kind]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown workload %q (have %s)",
			kind, strings.Join(Workloads(), ", "))
	}
	return w, nil
}

// Workloads returns the registered workload kinds, sorted.
func Workloads() []string {
	out := make([]string, 0, len(workloads))
	for k := range workloads {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// scenarios maps name → definition; order preserves registration order
// (the paper's artifact order) for list/--all.
var (
	scenarios = map[string]Scenario{}
	order     []string
)

// Register adds a named scenario to the registry. It validates eagerly
// when the workload kind is already registered, and panics on duplicate
// names.
func Register(sc Scenario) {
	if sc.Name == "" {
		panic("scenario: Register needs a name")
	}
	if _, dup := scenarios[sc.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate scenario %q", sc.Name))
	}
	if _, ok := workloads[sc.Workload]; ok {
		if err := sc.Validate(); err != nil {
			panic(fmt.Sprintf("scenario: invalid registration: %v", err))
		}
	}
	scenarios[sc.Name] = sc
	order = append(order, sc.Name)
}

// Names returns every registered scenario name in registration (paper)
// order.
func Names() []string { return append([]string(nil), order...) }

// Lookup returns a copy of the named scenario, so callers can override
// fields (trials, seed) without mutating the registry.
func Lookup(name string) (Scenario, error) {
	sc, ok := scenarios[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (run `odpsim list`; have %s)",
			name, strings.Join(Names(), ", "))
	}
	return sc, nil
}
