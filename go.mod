module odpsim

go 1.22
