// Alloc-budget guard for the congested datapath. The switched-fabric
// stage is on the same zero-allocation ownership contract as the analytic
// datapath (DESIGN.md §8–§9): entries, VL rings, ports, switches, rate
// states and delivery lines are all recycled through engine-generation
// arenas, so a warm trial — rebuild the two-switch topology, run a
// 4096-packet PFC-paused burst to completion — stays within a handful of
// allocations (down from ~12,450 before the pooling work landed).
package odpsim

import (
	"testing"

	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// congestedAllocCeiling bounds the warm-trial allocation count for the
// BenchmarkCongestedSend loop body. The measured warm figure is ~4
// (telemetry registration method values); the ceiling leaves headroom
// for allocator noise, not for growth — investigate anything above
// single digits.
const congestedAllocCeiling = 32

func TestAllocBudgetCongestedSend(t *testing.T) {
	eng := sim.New(1)
	seed := int64(0)
	trial := func() {
		seed++
		eng.Reset(seed)
		f := fabric.New(eng, fabric.DefaultConfig())
		src := f.AttachPort(1, "src", func(*packet.Packet) {})
		f.AttachPort(2, "dst", func(*packet.Packet) {})
		ccfg := congestion.DefaultConfig()
		ccfg.PFC = true
		f.EnableCongestion(ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = 2
			p.PSN = uint32(j)
			src.Send(p)
		}
		eng.Run()
	}
	trial() // first trial warms the arenas

	avg := testing.AllocsPerRun(10, trial)
	t.Logf("congested send→deliver trial allocates %.0f/op (ceiling %d)", avg, congestedAllocCeiling)
	if avg > congestedAllocCeiling {
		t.Errorf("congested trial allocates %.0f/op, ceiling %d — the switched datapath regressed off the warm-allocation contract",
			avg, congestedAllocCeiling)
	}
}

// closAllocCeiling bounds the warm-trial allocation count when the
// rebuilt fabric is a leaf-spine Clos instead of the chain: the graph is
// bigger (6 switches, 16 links, per-switch CSR routing tables), but the
// arenas, egress slices and table backing arrays all recycle across
// Reset, so a warm trial must stay as flat as the chain's.
const closAllocCeiling = 32

func TestAllocBudgetClosSend(t *testing.T) {
	ccfg := congestion.DefaultConfig()
	ccfg.Topology = congestion.ClosTopology(2, 4, 4)
	ccfg.PFC = true
	ccfg.XOffBytes = 1 << 10
	ccfg.XOnBytes = 512

	eng := sim.New(1)
	seed := int64(0)
	trial := func() {
		seed++
		eng.Reset(seed)
		f := fabric.New(eng, fabric.DefaultConfig())
		// Eight hosts round-robin across the four leaves; every flow
		// below crosses a spine, so ECMP and the routing tables are on
		// the measured path.
		ports := make([]*fabric.Port, 8)
		for lid := uint16(1); lid <= 8; lid++ {
			ports[lid-1] = f.AttachPort(lid, "host", func(*packet.Packet) {})
		}
		f.EnableCongestion(ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			src := ports[j%4]                  // leaves 0..3
			dst := uint16(5 + (j+1)%4)         // the other replica on each leaf
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = dst
			p.PSN = uint32(j)
			src.Send(p)
		}
		eng.Run()
	}
	trial() // first trial warms the arenas (incl. CSR routing tables)

	avg := testing.AllocsPerRun(10, trial)
	t.Logf("clos send→deliver trial allocates %.0f/op (ceiling %d)", avg, closAllocCeiling)
	if avg > closAllocCeiling {
		t.Errorf("clos trial allocates %.0f/op, ceiling %d — graph rebuild or ECMP routing left the warm-allocation contract",
			avg, closAllocCeiling)
	}
}
