// Alloc-budget guard for the congested datapath. The switched-fabric
// stage is not on the zero-alloc contract (DESIGN.md §8): rebuilding the
// two-switch topology and running a 4096-packet PFC-paused burst costs a
// five-figure allocation count per trial, dominated by the per-switch VL
// queues and buffer accounts. This test records the measured figure and
// pins a ceiling slightly above it so the path cannot silently grow —
// tighten the ceiling if the measurement drops.
package odpsim

import (
	"testing"

	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/packet"
	"odpsim/internal/sim"
)

// congestedAllocCeiling is ~8% above the ~12450 allocs/trial measured for
// the BenchmarkCongestedSend loop body at the time the guard was added.
const congestedAllocCeiling = 13500

func TestAllocBudgetCongestedSend(t *testing.T) {
	eng := sim.New(1)
	seed := int64(0)
	trial := func() {
		seed++
		eng.Reset(seed)
		f := fabric.New(eng, fabric.DefaultConfig())
		src := f.AttachPort(1, "src", func(*packet.Packet) {})
		f.AttachPort(2, "dst", func(*packet.Packet) {})
		ccfg := congestion.DefaultConfig()
		ccfg.PFC = true
		f.EnableCongestion(ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = 2
			p.PSN = uint32(j)
			src.Send(p)
		}
		eng.Run()
	}
	trial() // first trial warms the arenas

	avg := testing.AllocsPerRun(10, trial)
	t.Logf("congested send→deliver trial allocates %.0f/op (ceiling %d)", avg, congestedAllocCeiling)
	if avg > congestedAllocCeiling {
		t.Errorf("congested trial allocates %.0f/op, ceiling %d — the switched datapath grew",
			avg, congestedAllocCeiling)
	}
}
