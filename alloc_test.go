// Alloc-budget guard for the congested datapath. The switched-fabric
// stage is on the same zero-allocation ownership contract as the analytic
// datapath (DESIGN.md §8–§9): entries, VL rings, ports, switches, rate
// states and delivery lines are all recycled through engine-generation
// arenas, so a warm trial — rebuild the two-switch topology, run a
// 4096-packet PFC-paused burst to completion — stays within a handful of
// allocations (down from ~12,450 before the pooling work landed).
package odpsim

import (
	"testing"

	"odpsim/internal/cluster"
	"odpsim/internal/congestion"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/packet"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
)

// congestedAllocCeiling bounds the warm-trial allocation count for the
// BenchmarkCongestedSend loop body. The measured warm figure is ~4
// (telemetry registration method values); the ceiling leaves headroom
// for allocator noise, not for growth — investigate anything above
// single digits.
const congestedAllocCeiling = 32

func TestAllocBudgetCongestedSend(t *testing.T) {
	eng := sim.New(1)
	seed := int64(0)
	trial := func() {
		seed++
		eng.Reset(seed)
		f := fabric.New(eng, fabric.DefaultConfig())
		src := f.AttachPort(1, "src", func(*packet.Packet) {})
		f.AttachPort(2, "dst", func(*packet.Packet) {})
		ccfg := congestion.DefaultConfig()
		ccfg.PFC = true
		f.EnableCongestion(ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = 2
			p.PSN = uint32(j)
			src.Send(p)
		}
		eng.Run()
	}
	trial() // first trial warms the arenas

	avg := testing.AllocsPerRun(10, trial)
	t.Logf("congested send→deliver trial allocates %.0f/op (ceiling %d)", avg, congestedAllocCeiling)
	if avg > congestedAllocCeiling {
		t.Errorf("congested trial allocates %.0f/op, ceiling %d — the switched datapath regressed off the warm-allocation contract",
			avg, congestedAllocCeiling)
	}
}

// closAllocCeiling bounds the warm-trial allocation count when the
// rebuilt fabric is a leaf-spine Clos instead of the chain: the graph is
// bigger (6 switches, 16 links, per-switch CSR routing tables), but the
// arenas, egress slices and table backing arrays all recycle across
// Reset, so a warm trial must stay as flat as the chain's.
const closAllocCeiling = 32

func TestAllocBudgetClosSend(t *testing.T) {
	ccfg := congestion.DefaultConfig()
	ccfg.Topology = congestion.ClosTopology(2, 4, 4)
	ccfg.PFC = true
	ccfg.XOffBytes = 1 << 10
	ccfg.XOnBytes = 512

	eng := sim.New(1)
	seed := int64(0)
	trial := func() {
		seed++
		eng.Reset(seed)
		f := fabric.New(eng, fabric.DefaultConfig())
		// Eight hosts round-robin across the four leaves; every flow
		// below crosses a spine, so ECMP and the routing tables are on
		// the measured path.
		ports := make([]*fabric.Port, 8)
		for lid := uint16(1); lid <= 8; lid++ {
			ports[lid-1] = f.AttachPort(lid, "host", func(*packet.Packet) {})
		}
		f.EnableCongestion(ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			src := ports[j%4]                  // leaves 0..3
			dst := uint16(5 + (j+1)%4)         // the other replica on each leaf
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = dst
			p.PSN = uint32(j)
			src.Send(p)
		}
		eng.Run()
	}
	trial() // first trial warms the arenas (incl. CSR routing tables)

	avg := testing.AllocsPerRun(10, trial)
	t.Logf("clos send→deliver trial allocates %.0f/op (ceiling %d)", avg, closAllocCeiling)
	if avg > closAllocCeiling {
		t.Errorf("clos trial allocates %.0f/op, ceiling %d — graph rebuild or ECMP routing left the warm-allocation contract",
			avg, closAllocCeiling)
	}
}

// irnAllocCeiling bounds the warm-trial allocation count for the IRN
// selective-repeat send path. The trial rebuilds a two-node IRN cluster
// on a Reset-reused engine and floods 256 pinned-memory WRITEs over a
// 10%-lossy fabric, so SACK frames, reorder-buffer stashes and
// single-PSN retransmits are all on the measured path. The measured warm
// figure is ~892: ~818 is the cluster rebuild itself (RNIC structs, MR
// tables, CQs and QPs — fixed per rebuild, identical under the rc
// transport) and the IRN delta is ~74 fixed per-node telemetry
// registration. The figure is identical at 0% and 10% loss: the per-QP
// State comes from the irn.StateFor engine-generation arena and the
// SACK/stash/retransmit datapath allocates nothing per packet, which is
// the contract this ceiling pins — any per-packet or per-SACK allocation
// would add ≥256 and blow straight through it.
const irnAllocCeiling = 960

func TestAllocBudgetIRNSend(t *testing.T) {
	sys := cluster.KNL()
	sys.LossRate = 0.1
	sys.Transport = "irn"

	eng := sim.New(1)
	trial := func() {
		cl := sys.BuildOn(eng, 7, 2)
		client, server := cl.Nodes[0], cl.Nodes[1]

		const n, size = 256, 512
		lbuf := client.AS.Alloc(n * size)
		rbuf := server.AS.Alloc(n * size)
		client.AS.Touch(lbuf, n*size)
		server.AS.Touch(rbuf, n*size)
		client.RegisterMR(lbuf, n*size)
		server.RegisterMR(rbuf, n*size)

		cq := rnic.NewCQ(cl.Eng)
		scq := rnic.NewCQ(cl.Eng)
		params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
		qc := client.CreateQP(cq, cq)
		qs := server.CreateQP(scq, scq)
		rnic.ConnectPair(qc, qs, params, params)

		for i := 0; i < n; i++ {
			off := hostmem.Addr(i * size)
			qc.PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpWrite,
				LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
		}
		cl.Eng.Run()
		if got := len(cq.Poll(0)); got != n {
			t.Fatalf("completed %d/%d WRITEs", got, n)
		}
	}
	trial() // first trial warms the arenas (incl. the IRN state arena)

	avg := testing.AllocsPerRun(10, trial)
	t.Logf("irn send trial allocates %.0f/op (ceiling %d)", avg, irnAllocCeiling)
	if avg > irnAllocCeiling {
		t.Errorf("irn trial allocates %.0f/op, ceiling %d — the selective-repeat path regressed off the warm-allocation contract",
			avg, irnAllocCeiling)
	}
}
