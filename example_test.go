package odpsim_test

import (
	"fmt"

	"odpsim"
)

// ExampleRunMicrobench reproduces the paper's headline result: two
// 100-byte READs, one millisecond apart, take half a second on a
// ConnectX-4 with on-demand paging.
func ExampleRunMicrobench() {
	cfg := odpsim.DefaultBench() // KNL, both-side ODP, C_ACK=1, C_retry=7
	cfg.Interval = odpsim.Millisecond
	r := odpsim.RunMicrobench(cfg)
	fmt.Printf("timed out: %v\n", r.TimedOut())
	fmt.Printf("longer than 300ms: %v\n", r.ExecTime > 300*odpsim.Millisecond)
	// Output:
	// timed out: true
	// longer than 300ms: true
}

// ExampleMeasureTimeout shows the Figure-2 wrong-LID probe: the
// ConnectX-5 is the only device with a short timeout floor.
func ExampleMeasureTimeout() {
	cx4 := odpsim.MeasureTimeout(odpsim.KNL(), 1, 7)
	cx5 := odpsim.MeasureTimeout(odpsim.AzureHC(), 1, 7)
	fmt.Printf("ConnectX-4 floor ≈ 500ms: %v\n", cx4 > 400*odpsim.Millisecond && cx4 < 700*odpsim.Millisecond)
	fmt.Printf("ConnectX-5 floor ≈ 30ms: %v\n", cx5 > 20*odpsim.Millisecond && cx5 < 45*odpsim.Millisecond)
	// Output:
	// ConnectX-4 floor ≈ 500ms: true
	// ConnectX-5 floor ≈ 30ms: true
}

// ExampleDetectDamming captures a dammed run and identifies the stalled
// PSN from the packets alone, the way the paper's authors did with
// ibdump.
func ExampleDetectDamming() {
	cfg := odpsim.DefaultBench()
	cfg.Interval = odpsim.Millisecond
	cfg.WithCapture = true
	r := odpsim.RunMicrobench(cfg)
	incidents := odpsim.DetectDamming(r.Cap, 100*odpsim.Millisecond)
	fmt.Printf("incidents: %d\n", len(incidents))
	fmt.Printf("stall exceeds 100ms: %v\n", incidents[0].Stall > 100*odpsim.Millisecond)
	// Output:
	// incidents: 1
	// stall exceeds 100ms: true
}

// ExampleDummyPinger demonstrates the paper's §IX-A workaround: a
// periodic dummy communication converts the 500 ms timeout into a
// millisecond-scale NAK rescue.
func ExampleDummyPinger() {
	cfg := odpsim.DefaultBench()
	cfg.Interval = odpsim.Millisecond
	cfg.DummyPing = true
	cfg.DummyPingInterval = 200 * odpsim.Microsecond
	r := odpsim.RunMicrobench(cfg)
	fmt.Printf("timed out: %v\n", r.TimedOut())
	fmt.Printf("under 30ms: %v\n", r.ExecTime < 30*odpsim.Millisecond)
	// Output:
	// timed out: false
	// under 30ms: true
}

// ExampleReadLat runs the perftest-style latency measurement with
// server-side ODP: the first access pays the fault, the steady state
// matches pinned memory.
func ExampleReadLat() {
	cfg := odpsim.DefaultPerfConfig()
	cfg.Iters = 200
	cfg.Mode = odpsim.ServerODP
	r := odpsim.ReadLat(cfg)
	fmt.Printf("first access in fault territory (>3ms): %v\n", r.First > 3*odpsim.Millisecond)
	fmt.Printf("steady state at RTT (<8µs): %v\n", r.Typical < 8)
	// Output:
	// first access in fault territory (>3ms): true
	// steady state at RTT (<8µs): true
}
