// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark drives the corresponding experiment and
// reports the headline quantity via b.ReportMetric (use -v to see the
// underlying series). The full-resolution sweeps live in cmd/odpsweep and
// cmd/odpapps; the benchmarks use reduced grids so the whole suite stays
// runnable in minutes.
package odpsim

import (
	"fmt"
	"testing"

	"odpsim/internal/apps/argodsm"
	"odpsim/internal/apps/kvstore"
	"odpsim/internal/apps/sparkucx"
	"odpsim/internal/cluster"
	"odpsim/internal/congestion"
	"odpsim/internal/core"
	"odpsim/internal/fabric"
	"odpsim/internal/hostmem"
	"odpsim/internal/odp"
	"odpsim/internal/packet"
	"odpsim/internal/parallel"
	"odpsim/internal/perftest"
	"odpsim/internal/regcache"
	"odpsim/internal/rnic"
	"odpsim/internal/sim"
	"odpsim/internal/softrel"
	"odpsim/internal/stats"
)

// BenchmarkFig01_SingleReadWorkflow measures the common-case latency of a
// single ODP READ per side (the workflow of Figure 1).
func BenchmarkFig01_SingleReadWorkflow(b *testing.B) {
	for _, mode := range []core.ODPMode{core.ServerODP, core.ClientODP} {
		b.Run(mode.String(), func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultBench()
				cfg.NumOps = 1
				cfg.Mode = mode
				cfg.Seed = int64(i + 1)
				last = core.RunMicrobench(cfg).ExecTime
			}
			b.ReportMetric(last.Millis(), "ms/read")
		})
	}
}

// BenchmarkFig02_TimeoutSweep measures T_o floors on representative
// systems (the lines of Figure 2).
func BenchmarkFig02_TimeoutSweep(b *testing.B) {
	systems := []cluster.System{cluster.KNL(), cluster.AzureHC(), cluster.AzureHBv2()}
	var knlFloor, cx5Floor sim.Time
	for i := 0; i < b.N; i++ {
		series := core.SweepTimeouts(systems, []int{1, 8, 16, 18, 20}, int64(i+1))
		knlFloor = sim.FromSeconds(series[0].Y[0])
		cx5Floor = sim.FromSeconds(series[1].Y[0])
		if i == 0 {
			b.Logf("\n%s", stats.Table("C_ACK", series...))
		}
	}
	b.ReportMetric(knlFloor.Millis(), "ms-CX4-floor")
	b.ReportMetric(cx5Floor.Millis(), "ms-CX5-floor")
}

// BenchmarkFig04_TwoReadInterval regenerates the execution-time curve of
// two READs vs posting interval (Figure 4).
func BenchmarkFig04_TwoReadInterval(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		base := core.DefaultBench()
		base.Seed = int64(i + 1)
		s := core.SweepExecTime(base, core.IntervalRange(0, 6, 1), 3)
		if i == 0 {
			b.Logf("\n%s", stats.Table("interval[ms]", s))
		}
		peak = 0
		for _, y := range s.Y {
			if y > peak {
				peak = y
			}
		}
	}
	b.ReportMetric(peak, "s-peak-exec")
}

// BenchmarkFig05_TwoReadWorkflow reproduces the dammed two-READ trace and
// reports the stall the detector finds (Figure 5).
func BenchmarkFig05_TwoReadWorkflow(b *testing.B) {
	var stall sim.Time
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultBench()
		cfg.Interval = sim.Millisecond
		cfg.Seed = int64(i + 1)
		cfg.WithCapture = true
		r := core.RunMicrobench(cfg)
		if incs := core.DetectDamming(r.Cap, 100*sim.Millisecond); len(incs) > 0 {
			stall = incs[0].Stall
		}
	}
	b.ReportMetric(stall.Millis(), "ms-stall")
}

// BenchmarkFig06a_ServerODPTimeoutProb regenerates the server-side timeout
// probability curve for the three RNR delays (Figure 6a).
func BenchmarkFig06a_ServerODPTimeoutProb(b *testing.B) {
	var at1ms float64
	for i := 0; i < b.N; i++ {
		base := core.DefaultBench()
		base.Mode = core.ServerODP
		base.Seed = int64(i + 1)
		var series []*stats.Series
		for _, d := range []float64{0.01, 1.28, 10.24} {
			cfg := base
			cfg.MinRNRDelay = sim.FromMillis(d)
			series = append(series, core.SweepTimeoutProbability(cfg,
				core.IntervalRange(0, 6, 1), 4, ""))
		}
		at1ms = series[1].Y[1]
		if i == 0 {
			series[0].Label, series[1].Label, series[2].Label = "0.01ms", "1.28ms", "10.24ms"
			b.Logf("\n%s", stats.Table("interval[ms]", series...))
		}
	}
	b.ReportMetric(at1ms, "%timeout@1ms")
}

// BenchmarkFig06b_ClientODPTimeoutProb regenerates the client-side curve
// (Figure 6b).
func BenchmarkFig06b_ClientODPTimeoutProb(b *testing.B) {
	var at300us float64
	for i := 0; i < b.N; i++ {
		base := core.DefaultBench()
		base.Mode = core.ClientODP
		base.Seed = int64(i + 1)
		s := core.SweepTimeoutProbability(base,
			[]sim.Time{sim.FromMicros(300), sim.Millisecond, sim.FromMillis(3)}, 4, "1.28 ms")
		at300us = s.Y[0]
		if i == 0 {
			b.Logf("\n%s", stats.Table("interval[ms]", s))
		}
	}
	b.ReportMetric(at300us, "%timeout@0.3ms")
}

// BenchmarkFig07_MoreReads regenerates the narrowing-window curves for
// 2/3/4 operations (Figure 7).
func BenchmarkFig07_MoreReads(b *testing.B) {
	var threeOpsAt2ms float64
	for i := 0; i < b.N; i++ {
		var series []*stats.Series
		for _, n := range []int{2, 3, 4} {
			cfg := core.DefaultBench()
			cfg.NumOps = n
			cfg.Seed = int64(i + 1)
			series = append(series, core.SweepTimeoutProbability(cfg,
				core.IntervalRange(0, 6, 1), 4, ""))
		}
		threeOpsAt2ms = series[1].Y[2]
		if i == 0 {
			series[0].Label, series[1].Label, series[2].Label = "2 ops", "3 ops", "4 ops"
			b.Logf("\n%s", stats.Table("interval[ms]", series...))
		}
	}
	b.ReportMetric(threeOpsAt2ms, "%timeout-3ops@2ms")
}

// BenchmarkFig08_ThreeReadWorkflow reproduces the PSN-sequence-error
// rescue (Figure 8) and reports the NAK count (no timeout expected).
func BenchmarkFig08_ThreeReadWorkflow(b *testing.B) {
	var naks, timeouts uint64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultBench()
		cfg.NumOps = 3
		cfg.Mode = core.ServerODP
		cfg.Interval = sim.FromMillis(2.5)
		cfg.Seed = int64(i + 1)
		r := core.RunMicrobench(cfg)
		naks, timeouts = r.NakSeqSent, r.Timeouts
	}
	b.ReportMetric(float64(naks), "psn-naks")
	b.ReportMetric(float64(timeouts), "timeouts")
}

// fig9Sweep runs the reduced Figure-9 grid shared by the 9a/9b benchmarks.
func fig9Sweep(seed int64) *core.QPSweepResult {
	base := core.DefaultBench()
	base.NumOps = 2048
	base.CACK = 18
	base.Seed = seed
	return core.SweepQPs(base, []int{1, 10, 50, 128},
		[]core.ODPMode{core.NoODP, core.ServerODP, core.ClientODP, core.BothODP})
}

// BenchmarkFig09a_QPSweepTime regenerates the execution-time-vs-QPs curves
// (Figure 9a, reduced grid; full grid via cmd/odpsweep -fig 9).
func BenchmarkFig09a_QPSweepTime(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		res := fig9Sweep(int64(i + 1))
		cl, no := res.Time[core.ClientODP], res.Time[core.NoODP]
		slowdown = cl.Y[len(cl.Y)-1] / no.Y[len(no.Y)-1]
		if i == 0 {
			b.Logf("\n%s", stats.Table("#QPs", no, res.Time[core.ServerODP], cl, res.Time[core.BothODP]))
		}
	}
	b.ReportMetric(slowdown, "x-clientODP-vs-noODP@128qp")
}

// BenchmarkFig09b_QPSweepPackets regenerates the packet-count curves
// (Figure 9b).
func BenchmarkFig09b_QPSweepPackets(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := fig9Sweep(int64(i + 100))
		cl, no := res.Packets[core.ClientODP], res.Packets[core.NoODP]
		ratio = cl.Y[len(cl.Y)-1] / no.Y[len(no.Y)-1]
		if i == 0 {
			b.Logf("\n%s", stats.Table("#QPs", no, res.Packets[core.ServerODP], cl, res.Packets[core.BothODP]))
		}
	}
	b.ReportMetric(ratio, "x-packets-clientODP@128qp")
}

func fig11Run(ops int, seed int64) *core.BenchResult {
	cfg := core.DefaultBench()
	cfg.Mode = core.ClientODP
	cfg.Size = 32
	cfg.NumQPs = 128
	cfg.NumOps = ops
	cfg.CACK = 18
	cfg.Seed = seed
	return core.RunMicrobench(cfg)
}

// BenchmarkFig11a_FloodProgress128 regenerates the 128-operation progress
// profile (Figure 11a): completions begin under ≈1 ms but the earliest
// operations stay stuck for several ms.
func BenchmarkFig11a_FloodProgress128(b *testing.B) {
	var last sim.Time
	for i := 0; i < b.N; i++ {
		r := fig11Run(128, int64(i+1))
		last = 0
		for _, ct := range r.CompletionTime {
			if ct > last {
				last = ct
			}
		}
		if i == 0 {
			b.Logf("\n%s", stats.Table("t[ms]", core.ProgressByPage(r, 32, sim.Millisecond)...))
		}
	}
	b.ReportMetric(last.Millis(), "ms-last-completion")
}

// BenchmarkFig11b_FloodProgress512 regenerates the 512-operation profile
// (Figure 11b): the update failure spreads completions over hundreds of
// milliseconds and beyond.
func BenchmarkFig11b_FloodProgress512(b *testing.B) {
	var last sim.Time
	for i := 0; i < b.N; i++ {
		r := fig11Run(512, int64(i+1))
		last = 0
		for _, ct := range r.CompletionTime {
			if ct > last {
				last = ct
			}
		}
	}
	b.ReportMetric(last.Millis(), "ms-last-completion")
}

// BenchmarkFig12_ArgoDSM regenerates the init+finalize distributions with
// ODP off/on (Figure 12, reduced trial count).
func BenchmarkFig12_ArgoDSM(b *testing.B) {
	for _, odpOn := range []bool{false, true} {
		name := "woODP"
		if odpOn {
			name = "wODP"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				cfg := argodsm.DefaultConfig()
				cfg.ODP = odpOn
				cfg.Seed = int64(i + 1)
				times, _ := argodsm.Distribution(cfg, 20, 6)
				mean = stats.Summarize(times).Mean
			}
			b.ReportMetric(mean, "s-mean-exec")
		})
	}
}

// BenchmarkTab13_SparkUCX regenerates one Table-13 row pair per example on
// the KNL configuration (full table via cmd/odpapps -app sparkucx).
func BenchmarkTab13_SparkUCX(b *testing.B) {
	knl := sparkucx.Table13Configs()[0]
	for _, ex := range []sparkucx.Example{sparkucx.SparkTC, sparkucx.RecommendationExample, sparkucx.RankingMetricsExample} {
		b.Run(ex.String(), func(b *testing.B) {
			var row sparkucx.Row
			for i := 0; i < b.N; i++ {
				row = sparkucx.MeasureRow(ex, knl, 2, int64(i+1), 1)
			}
			b.ReportMetric(row.Disable.Mean, "s-disable")
			b.ReportMetric(row.Enable.Mean, "s-enable")
			b.ReportMetric(row.Ratio, "x-ratio")
		})
	}
}

// --- Ablations: each design choice in DESIGN.md §4, toggled off ---

// BenchmarkAblation_DammingQuirk compares the two-READ schedule on the
// quirky ConnectX-4 vs the fixed ConnectX-6: the quirk is load-bearing for
// the Figure-4/5 timeouts.
func BenchmarkAblation_DammingQuirk(b *testing.B) {
	for _, sys := range []cluster.System{cluster.KNL(), cluster.AzureHBv2()} {
		b.Run(sys.Device.Name, func(b *testing.B) {
			var exec sim.Time
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultBench()
				cfg.System = sys
				cfg.Interval = sim.Millisecond
				cfg.Seed = int64(i + 1)
				exec = core.RunMicrobench(cfg).ExecTime
			}
			b.ReportMetric(exec.Millis(), "ms-exec")
		})
	}
}

// BenchmarkAblation_UpdateOrder compares LIFO vs FIFO page-status update
// order in the Figure-11a run: LIFO is what starves the earliest ops.
func BenchmarkAblation_UpdateOrder(b *testing.B) {
	for _, fifo := range []bool{false, true} {
		name := "LIFO"
		if fifo {
			name = "FIFO"
		}
		b.Run(name, func(b *testing.B) {
			var lastEarlyOp float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultBench()
				cfg.Mode = core.ClientODP
				cfg.Size = 32
				cfg.NumQPs = 128
				cfg.NumOps = 128
				cfg.CACK = 18
				cfg.Seed = int64(i + 1)
				cfg.System.Device.ODP.UpdatesFIFO = fifo
				r := core.RunMicrobench(cfg)
				var worst sim.Time
				for op := 0; op < 32; op++ {
					if r.CompletionTime[op] > worst {
						worst = r.CompletionTime[op]
					}
				}
				lastEarlyOp = worst.Millis()
			}
			b.ReportMetric(lastEarlyOp, "ms-first32ops-done")
		})
	}
}

// BenchmarkAblation_SpuriousCost compares the flood run with and without
// the spurious pipeline cost: without it, stale statuses clear as fast as
// updates alone allow and the flood shrinks.
func BenchmarkAblation_SpuriousCost(b *testing.B) {
	for _, free := range []bool{false, true} {
		name := "calibrated"
		if free {
			name = "free"
		}
		b.Run(name, func(b *testing.B) {
			var exec sim.Time
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultBench()
				cfg.Mode = core.ClientODP
				cfg.NumOps = 2048
				cfg.NumQPs = 64
				cfg.CACK = 18
				cfg.Seed = int64(i + 1)
				cfg.System.Device.ODP.SpuriousFree = free
				exec = core.RunMicrobench(cfg).ExecTime
			}
			b.ReportMetric(exec.Millis(), "ms-exec")
		})
	}
}

// BenchmarkAblation_RNRWaitFactor compares the observed ≈3.5× RNR wait
// against a literal-spec requester that waits exactly the advertised
// delay: the damming window (and Figure 6a's 4.5 ms boundary) tracks it.
func BenchmarkAblation_RNRWaitFactor(b *testing.B) {
	for _, factor := range []float64{3.5, 1.0} {
		name := "observed3.5x"
		if factor == 1.0 {
			name = "spec1.0x"
		}
		b.Run(name, func(b *testing.B) {
			var timeouts uint64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultBench()
				cfg.Mode = core.ServerODP
				cfg.Interval = sim.FromMillis(2)
				cfg.Seed = int64(i + 1)
				cfg.System.Device.RNRWaitFactor = factor
				timeouts = core.RunMicrobench(cfg).Timeouts
			}
			b.ReportMetric(float64(timeouts), "timeouts@2ms")
		})
	}
}

// BenchmarkAblation_SerialPipeline compares the calibrated serial ODP
// pipeline against an idealized fast one (tiny update cost): the
// Figure-11a tail collapses.
func BenchmarkAblation_SerialPipeline(b *testing.B) {
	for _, fast := range []bool{false, true} {
		name := "calibrated"
		if fast {
			name = "idealized"
		}
		b.Run(name, func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultBench()
				cfg.Mode = core.ClientODP
				cfg.Size = 32
				cfg.NumQPs = 128
				cfg.NumOps = 128
				cfg.CACK = 18
				cfg.Seed = int64(i + 1)
				if fast {
					cfg.System.Device.ODP.QPUpdateCost = sim.Microsecond
				}
				r := core.RunMicrobench(cfg)
				last = 0
				for _, ct := range r.CompletionTime {
					if ct > last {
						last = ct
					}
				}
			}
			b.ReportMetric(last.Millis(), "ms-last-completion")
		})
	}
}

// BenchmarkAblation_Congestion reruns the flood with the fabric's
// egress-queuing model enabled: the millions of flood packets now consume
// wire time too.
func BenchmarkAblation_Congestion(b *testing.B) {
	for _, congested := range []bool{false, true} {
		name := "latency-only"
		if congested {
			name = "egress-queued"
		}
		b.Run(name, func(b *testing.B) {
			var exec sim.Time
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultBench()
				cfg.Mode = core.ClientODP
				cfg.NumOps = 2048
				cfg.NumQPs = 64
				cfg.CACK = 18
				cfg.Seed = int64(i + 1)
				cfg.System.ModelCongestion = congested
				exec = core.RunMicrobench(cfg).ExecTime
			}
			b.ReportMetric(exec.Millis(), "ms-exec")
		})
	}
}

// --- Extensions beyond the paper's evaluation ---

// BenchmarkMotivation_RegistrationStrategies compares the §VIII-A
// registration-management baselines against ODP on a reuse-heavy trace —
// the tradeoff that motivates ODP (§I).
func BenchmarkMotivation_RegistrationStrategies(b *testing.B) {
	costs := regcache.DefaultCosts()
	strategies := []struct {
		name string
		mk   func(nic *rnicRNIC) regcache.Strategy
	}{
		{"direct-pin", func(n *rnicRNIC) regcache.Strategy { return regcache.NewDirectPin(n, costs) }},
		{"pin-down-cache", func(n *rnicRNIC) regcache.Strategy { return regcache.NewPinDownCache(n, costs, 1<<20) }},
		{"batched-dereg", func(n *rnicRNIC) regcache.Strategy { return regcache.NewBatchedDereg(n, costs, 1<<20, 8) }},
		{"odp", func(n *rnicRNIC) regcache.Strategy { return regcache.NewODPOnce(n) }},
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			var res regcache.WorkloadResult
			for i := 0; i < b.N; i++ {
				cl := cluster.ReedbushH().Build(int64(i+1), 1)
				strat := s.mk(cl.Nodes[0])
				trace := regcache.SyntheticTrace(cl.Eng, cl.Nodes[0], 64, 16384, 1000, 0.25)
				res = regcache.RunWorkload(cl.Eng, strat, trace)
			}
			b.ReportMetric(res.Time.Millis(), "ms-total")
			b.ReportMetric(float64(res.MaxPinned)/1024, "KiB-pinned")
		})
	}
}

type rnicRNIC = rnic.RNIC

// BenchmarkExtension_SoftwareReliability measures failure-detection time:
// hardware RC retry exhaustion vs the §VIII-C software-timeout approach
// over UD, against an unreachable peer.
func BenchmarkExtension_SoftwareReliability(b *testing.B) {
	b.Run("UD-software", func(b *testing.B) {
		var detect sim.Time
		for i := 0; i < b.N; i++ {
			cl := cluster.ReedbushH().Build(int64(i+1), 2)
			cfg := softrel.DefaultConfig()
			cfg.Retries = 3
			cli := softrel.NewClient(cl.Nodes[0], cfg)
			cl.Eng.Go("caller", func(p *sim.Proc) {
				start := p.Now()
				_ = cli.Call(p, 99, 1, 64)
				detect = p.Now() - start
			})
			cl.Eng.Run()
		}
		b.ReportMetric(detect.Millis(), "ms-detect")
	})
	b.Run("RC-hardware", func(b *testing.B) {
		var detect sim.Time
		for i := 0; i < b.N; i++ {
			detect = core.MeasureTimeout(cluster.ReedbushH(), 1, int64(i+1)) * 4 // 1+3 attempts
		}
		b.ReportMetric(detect.Millis(), "ms-detect")
	})
}

// BenchmarkWorkaround_Prefetch compares the Figure-11a flood run with and
// without ibv_advise_mr-style prefetching of the fetch buffers — the
// Li et al. receiver-side prefetch that sidesteps the flood entirely.
func BenchmarkWorkaround_Prefetch(b *testing.B) {
	for _, prefetch := range []bool{false, true} {
		name := "faulting"
		if prefetch {
			name = "prefetched"
		}
		b.Run(name, func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				last = runFloodWithPrefetch(int64(i+1), prefetch)
			}
			b.ReportMetric(last.Millis(), "ms-last-completion")
		})
	}
}

// runFloodWithPrefetch builds the Figure-11a scenario by hand so the
// prefetch can be issued per QP before traffic starts.
func runFloodWithPrefetch(seed int64, prefetch bool) sim.Time {
	cl := cluster.KNL().Build(seed, 2)
	client, server := cl.Nodes[0], cl.Nodes[1]
	const nqp, size = 128, 32
	buflen := nqp * size
	lbuf := client.AS.Alloc(buflen)
	rbuf := server.AS.Alloc(buflen)
	client.RegisterODPMR(lbuf, buflen)
	server.RegisterMR(rbuf, buflen)
	cq := rnic.NewCQ(cl.Eng)
	scq := rnic.NewCQ(cl.Eng)
	params := rnic.ConnParams{CACK: 18, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
	var last sim.Time
	qps := make([]*rnic.QP, nqp)
	for i := 0; i < nqp; i++ {
		qc := client.CreateQP(cq, cq)
		qs := server.CreateQP(scq, scq)
		rnic.ConnectPair(qc, qs, params, params)
		qps[i] = qc
		if prefetch {
			client.AdviseMR(qc.Num, lbuf, buflen)
		}
	}
	if prefetch {
		// Prefetch at registration time: the pipeline drains before the
		// application starts communicating.
		cl.Eng.Run()
	}
	start := cl.Eng.Now()
	for i, qc := range qps {
		off := uint64(i * size)
		qc.PostSend(rnic.SendWR{ID: uint64(i), Op: rnic.OpRead,
			LocalAddr: lbuf + hostmemAddr(off), RemoteAddr: rbuf + hostmemAddr(off), Len: size})
	}
	cl.Eng.Run()
	for _, e := range cq.Poll(0) {
		if e.At-start > last {
			last = e.At - start
		}
	}
	return last
}

type hostmemAddr = hostmem.Addr

// BenchmarkExtension_PerftestLatency runs the ib_read_lat equivalent per
// registration mode — the Li et al. first-access/steady-state comparison.
func BenchmarkExtension_PerftestLatency(b *testing.B) {
	for _, m := range []core.ODPMode{core.NoODP, core.ServerODP} {
		b.Run(m.String(), func(b *testing.B) {
			var r perftest.LatencyResult
			for i := 0; i < b.N; i++ {
				cfg := perftest.DefaultConfig()
				cfg.Iters = 500
				cfg.Mode = m
				cfg.Seed = int64(i + 1)
				r = perftest.ReadLat(cfg)
			}
			b.ReportMetric(r.Typical, "µs-typical")
			b.ReportMetric(r.First.Micros(), "µs-first")
		})
	}
}

// BenchmarkExtension_KVStore measures the HERD-style store's throughput —
// the §VIII-C design that never meets the RC timeout machinery.
func BenchmarkExtension_KVStore(b *testing.B) {
	var perOp sim.Time
	for i := 0; i < b.N; i++ {
		cl := cluster.ReedbushH().Build(int64(i+1), 2)
		cfg := softrel.DefaultConfig()
		srv := kvstore.NewServer(cl.Nodes[1], cfg, 300*sim.Nanosecond)
		cli := kvstore.NewClient(cl.Nodes[0], cfg, srv)
		const n = 1000
		cl.Eng.Go("client", func(p *sim.Proc) {
			start := p.Now()
			for k := uint64(0); k < n; k++ {
				if err := cli.Put(p, k, k); err != nil {
					b.Error(err)
					return
				}
			}
			perOp = (p.Now() - start) / n
		})
		cl.Eng.Run()
	}
	b.ReportMetric(perOp.Micros(), "µs/op")
}

// BenchmarkExtension_SparkEngine runs the DAG engine's TC-shaped job with
// and without ODP.
func BenchmarkExtension_SparkEngine(b *testing.B) {
	for _, odp := range []bool{false, true} {
		name := "pinned"
		if odp {
			name = "odp"
		}
		b.Run(name, func(b *testing.B) {
			var r sparkucx.JobResult
			for i := 0; i < b.N; i++ {
				r = sparkucx.RunJob(sparkucx.JobConfig{
					System: cluster.ReedbushH(), Seed: int64(i + 1),
					Executors: 2, QPsPerPeer: 8, ODP: odp,
					Job: sparkucx.TCJob(2),
				})
			}
			b.ReportMetric(r.Time.Millis(), "ms-job")
			b.ReportMetric(float64(r.Retransmits), "retransmits")
		})
	}
}

var _ = odp.DefaultConfig // keep the odp import for ablation docs references

// --- BenchmarkSweep family: the parallel sweep runner and engine hot
// path, tracked in BENCH_sweeps.json via `odpperf -write-bench` ---

// benchSweepGrid is the reduced Fig-4 sweep the runner benchmarks share.
func benchSweepGrid(b *testing.B, jobs int) {
	parallel.SetJobs(jobs)
	defer parallel.SetJobs(0)
	for i := 0; i < b.N; i++ {
		base := core.DefaultBench()
		base.Seed = int64(i + 1)
		core.SweepExecTime(base, core.IntervalRange(0, 6, 1), 3)
	}
}

// BenchmarkSweepSequential is the -j 1 baseline for the multi-trial
// Figure-4 sweep.
func BenchmarkSweepSequential(b *testing.B) { benchSweepGrid(b, 1) }

// BenchmarkSweepParallel is the same sweep on the full worker pool; the
// wall-clock ratio against BenchmarkSweepSequential is the fan-out
// speedup (≈1x on a single-core host, ≥2x from 4 cores up).
func BenchmarkSweepParallel(b *testing.B) { benchSweepGrid(b, 0) }

// BenchmarkSweepTimeoutProbability exercises the probability sweep the
// Fig-6/7 drivers use, on the worker pool.
func BenchmarkSweepTimeoutProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := core.DefaultBench()
		base.Mode = core.ServerODP
		base.Seed = int64(i + 1)
		core.SweepTimeoutProbability(base, core.IntervalRange(0, 6, 1), 4, "1.28 ms")
	}
}

// BenchmarkSweepEngineEventLoop measures the engine hot path alone: the
// RC requester's schedule-ACK-cancel pattern on a Reset-reused engine.
// The event free list and eager Cancel keep allocs/op flat (one Timer
// handle per After is all that escapes).
func BenchmarkSweepEngineEventLoop(b *testing.B) {
	eng := sim.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Reset(int64(i))
		var pending sim.Timer
		for j := 0; j < 1024; j++ {
			pending.Cancel() // no-op on the zero Timer
			pending = eng.After(sim.Time(j+1)*sim.Microsecond, func() {})
			eng.After(sim.Time(j)*sim.Microsecond, func() {})
		}
		eng.Run()
	}
}

// BenchmarkSweepDatapathSendDeliver measures the pooled packet datapath:
// a rebuilt fabric and a 4096-packet send→deliver stream per iteration,
// everything drawn from the engine-generation arenas. Warm, the whole
// loop stays within a couple of allocations (DESIGN.md §8;
// TestAllocBudgetSendDeliver pins the steady-state budget).
func BenchmarkSweepDatapathSendDeliver(b *testing.B) {
	eng := sim.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Reset(int64(i))
		f := fabric.New(eng, fabric.DefaultConfig())
		src := f.AttachPort(1, "src", func(*packet.Packet) {})
		f.AttachPort(2, "dst", func(*packet.Packet) {})
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = 2
			p.PSN = uint32(j)
			src.Send(p)
		}
		eng.Run()
	}
}

// BenchmarkCongestedSend measures the same pooled send→deliver stream
// through the switched lossless-fabric stage of internal/congestion: two
// hosts on opposite edge switches with PFC on, so every packet crosses
// the 4×-oversubscribed inter-switch link and the host uplink is
// XOFF/XON-paused while the burst drains. The delta against
// BenchmarkSweepDatapathSendDeliver is the per-packet cost of the switch
// model (buffer accounting, VL queues, the PFC state machine). The
// switched stage is on the warm zero-allocation contract (DESIGN.md §9):
// entries, VL rings, wires and topology come from engine-generation
// arenas, and TestAllocBudgetCongestedSend pins the warm trial budget.
func BenchmarkCongestedSend(b *testing.B) {
	eng := sim.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Reset(int64(i))
		f := fabric.New(eng, fabric.DefaultConfig())
		src := f.AttachPort(1, "src", func(*packet.Packet) {})
		f.AttachPort(2, "dst", func(*packet.Packet) {})
		ccfg := congestion.DefaultConfig()
		ccfg.PFC = true
		f.EnableCongestion(ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = 2
			p.PSN = uint32(j)
			src.Send(p)
		}
		eng.Run()
	}
}

// BenchmarkCongestedSendClos is BenchmarkCongestedSend on a leaf-spine
// Clos (radix 4, 4× oversubscription) with eight hosts spread across the
// four leaves: every packet is routed by the per-switch CSR tables and
// the spine hop is picked by seeded-hash ECMP, so the delta against
// BenchmarkCongestedSend is the cost of graph routing over the
// hard-wired chain. TestAllocBudgetClosSend pins the warm trial budget.
func BenchmarkCongestedSendClos(b *testing.B) {
	ccfg := congestion.DefaultConfig()
	ccfg.Topology = congestion.ClosTopology(2, 4, 4)
	ccfg.PFC = true
	ccfg.XOffBytes = 1 << 10
	ccfg.XOnBytes = 512
	eng := sim.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Reset(int64(i))
		f := fabric.New(eng, fabric.DefaultConfig())
		ports := make([]*fabric.Port, 8)
		for lid := uint16(1); lid <= 8; lid++ {
			ports[lid-1] = f.AttachPort(lid, "host", func(*packet.Packet) {})
		}
		f.EnableCongestion(ccfg)
		pool := f.Pool()
		for j := 0; j < 4096; j++ {
			p := pool.Get()
			p.Opcode = packet.OpReadRequest
			p.DLID = uint16(5 + (j+1)%4)
			p.PSN = uint32(j)
			ports[j%4].Send(p)
		}
		eng.Run()
	}
}

// BenchmarkShardedIncast measures the bounded-lag shard layer on a
// 64-host fat-tree: eight radix-4 pod cells (8 hosts each) on per-pod
// engines, each absorbing a 4096-packet cross-edge burst through the
// switched PFC fabric, with digest flights converging on pod 0 over the
// shard boundary links. The shards=8/shards=1 wall-clock ratio is the
// scale-out speedup (recorded in BENCH_baseline.json; ≈1x on a
// single-core host since the lanes are OS threads — see README's
// scale-out section). Output is byte-identical at both counts, so the
// only thing the lane count may change is the wall clock.
func BenchmarkShardedIncast(b *testing.B) {
	for _, lanes := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", lanes), func(b *testing.B) {
			sf := newShardedFabric(8, lanes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sf.trial(int64(i * 16))
			}
			if sf.digests == 0 {
				b.Fatal("no digest flights crossed the shard boundary")
			}
		})
	}
}

// BenchmarkIRNSend measures the IRN selective-repeat datapath: a
// two-node cluster rebuilt per trial on a Reset-reused engine, flooding
// 256 pinned-memory WRITEs over a 10%-lossy fabric so drops exercise
// the SACK, reorder-buffer and single-PSN retransmit paths on every
// iteration. TestAllocBudgetIRNSend pins the warm trial budget.
func BenchmarkIRNSend(b *testing.B) {
	sys := cluster.KNL()
	sys.LossRate = 0.1
	sys.Transport = "irn"
	eng := sim.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl := sys.BuildOn(eng, int64(i+1), 2)
		client, server := cl.Nodes[0], cl.Nodes[1]
		const n, size = 256, 512
		lbuf := client.AS.Alloc(n * size)
		rbuf := server.AS.Alloc(n * size)
		client.AS.Touch(lbuf, n*size)
		server.AS.Touch(rbuf, n*size)
		client.RegisterMR(lbuf, n*size)
		server.RegisterMR(rbuf, n*size)
		cq := rnic.NewCQ(cl.Eng)
		scq := rnic.NewCQ(cl.Eng)
		params := rnic.ConnParams{CACK: 8, RetryCount: 7, MinRNRDelay: sim.FromMillis(1.28)}
		qc := client.CreateQP(cq, cq)
		qs := server.CreateQP(scq, scq)
		rnic.ConnectPair(qc, qs, params, params)
		for j := 0; j < n; j++ {
			off := hostmem.Addr(j * size)
			qc.PostSend(rnic.SendWR{ID: uint64(j), Op: rnic.OpWrite,
				LocalAddr: lbuf + off, RemoteAddr: rbuf + off, Len: size})
		}
		cl.Eng.Run()
		if got := len(cq.Poll(0)); got != n {
			b.Fatalf("completed %d/%d WRITEs", got, n)
		}
	}
}

// BenchmarkSweepMicrobenchReuse measures one default micro-benchmark run
// on a Reset-reused engine — the per-trial cost inside every sweep.
func BenchmarkSweepMicrobenchReuse(b *testing.B) {
	eng := sim.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultBench()
		cfg.Eng = eng
		cfg.Seed = int64(i + 1)
		core.RunMicrobench(cfg)
	}
}
