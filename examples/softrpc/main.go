// Command softrpc demonstrates the §VIII-C lesson: hardware Reliable
// Connection detects a lost packet only after the vendor-floored Local-ACK
// timeout (≈500 ms at best, Figure 2), while software reliability over
// Unreliable Datagram — RPCs with an application-level timer — detects and
// recovers in milliseconds.
package main

import (
	"fmt"

	"odpsim"
)

func main() {
	// --- Software reliability over UD ---
	cl := odpsim.ReedbushH().Build(1, 2)
	cfg := odpsim.DefaultRPCConfig()
	cfg.Retries = 3
	server := odpsim.NewRPCServer(cl.Nodes[1], cfg)
	client := odpsim.NewRPCClient(cl.Nodes[0], cfg)

	var okLatency, failLatency odpsim.Time
	cl.Eng.Go("caller", func(p *odpsim.Proc) {
		start := p.Now()
		if err := client.Call(p, server.LID(), server.QPN(), 64); err != nil {
			fmt.Println("unexpected:", err)
		}
		okLatency = p.Now() - start

		// Now call a black hole (unreachable LID).
		start = p.Now()
		err := client.Call(p, 99, 1, 64)
		failLatency = p.Now() - start
		fmt.Printf("UD soft-RPC: success in %v; unreachable peer detected in %v (%v)\n",
			okLatency, failLatency, err)
	})
	cl.Eng.Run() // the RPC server process parks forever; Run drains events

	// --- Hardware reliability (RC) against the same black hole ---
	cl2 := odpsim.ReedbushH().Build(2, 2)
	ctx := odpsim.OpenDevice(cl2.Nodes[0])
	pd := ctx.AllocPD()
	cq := ctx.CreateCQ()
	qp := pd.CreateQP(cq, cq)
	must(qp.Connect(odpsim.QPAttr{DestLID: 99, DestQPNum: 1, Timeout: 1, RetryCnt: 3}))
	lbuf := cl2.Nodes[0].AS.Alloc(odpsim.PageSize)
	_, err := pd.RegisterMR(lbuf, odpsim.PageSize, odpsim.AccessLocalWrite)
	must(err)
	var hardLatency odpsim.Time
	cl2.Eng.Go("rc-caller", func(p *odpsim.Proc) {
		start := p.Now()
		must(qp.PostRead(1, lbuf, 0x1000, 64))
		cqe := cq.WaitN(p, 1)[0]
		hardLatency = p.Now() - start
		fmt.Printf("RC hardware:  unreachable peer detected in %v (%s)\n",
			hardLatency, cqe.Status)
	})
	cl2.Eng.MustRun()

	fmt.Printf("\nsoftware reliability detects failure %.0f× faster — the reason\n",
		float64(hardLatency)/float64(failLatency))
	fmt.Println("UD-based systems (§VIII-C) never notice the long-timeout pitfall.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
