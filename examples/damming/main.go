// Command damming reproduces the paper's first pitfall — packet damming
// (§V) — with the Figure-3 micro-benchmark, shows the detector finding it
// in the capture, and then demonstrates both §IX-A software workarounds:
// the smallest RNR NAK delay and the periodic dummy communication.
package main

import (
	"fmt"

	"odpsim"
)

func run(label string, mutate func(*odpsim.BenchConfig)) *odpsim.BenchResult {
	cfg := odpsim.DefaultBench()
	cfg.Interval = odpsim.Millisecond // the vulnerable 1 ms posting gap
	cfg.WithCapture = true
	if mutate != nil {
		mutate(&cfg)
	}
	r := odpsim.RunMicrobench(cfg)
	fmt.Printf("%-34s exec=%-10v timeouts=%d dammed-drops=%d\n",
		label, r.ExecTime, r.Timeouts, r.DammedDrops)
	return r
}

func main() {
	fmt.Println("two READs, 1 ms apart, both-side ODP, ConnectX-4 (KNL):")
	fmt.Println()

	base := run("baseline (pitfall)", nil)
	for _, inc := range odpsim.DetectDamming(base.Cap, 100*odpsim.Millisecond) {
		fmt.Printf("  detector: %s\n", inc)
	}
	fmt.Println()

	run("workaround 1: smallest RNR delay", func(c *odpsim.BenchConfig) {
		c.MinRNRDelay = odpsim.SmallestRNRDelay
	})
	run("workaround 2: dummy communication", func(c *odpsim.BenchConfig) {
		c.DummyPing = true
		c.DummyPingInterval = 200 * odpsim.Microsecond
	})
	run("fixed hardware: ConnectX-6", func(c *odpsim.BenchConfig) {
		c.System = odpsim.AzureHBv2()
	})

	fmt.Println()
	fmt.Println("the baseline pays a ~500 ms Local-ACK timeout for a 100-byte READ;")
	fmt.Println("every mitigation collapses it back to milliseconds.")
}
