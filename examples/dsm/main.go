// Command dsm builds a miniature ArgoDSM-style distributed shared memory
// initialization on the public UCX-like API and shows how enabling ODP
// produces the paper's Figure-12 bimodal execution-time distribution —
// and how tuning the minimal RNR NAK delay shifts it back.
package main

import (
	"fmt"

	"odpsim"
)

// initDSM models a DSM node joining: register the global region, touch
// the home-node directory, then take the global lock with a READ followed
// shortly by a SEND — the packet-damming pattern §VII-A uncovered.
func initDSM(seed int64, ucfg odpsim.UCXConfig) (total odpsim.Time, timedOut bool) {
	cl := odpsim.KNL().Build(seed, 2)
	home := odpsim.NewUCXContext(cl.Nodes[0], ucfg).NewWorker()
	peer := odpsim.NewUCXContext(cl.Nodes[1], ucfg).NewWorker()
	epHome, epPeer := odpsim.UCXConnect(home, peer)

	const mem = 1 << 20 // 1 MB global memory for the demo
	globalMem := cl.Nodes[0].AS.Alloc(mem)
	peerMem := cl.Nodes[1].AS.Alloc(mem)

	cl.Eng.Go("dsm-init", func(p *odpsim.Proc) {
		p.Sleep(home.RegisterBuffer(globalMem, mem))
		p.Sleep(peer.RegisterBuffer(peerMem, mem))

		// Directory first touches.
		for i := 0; i < 4; i++ {
			off := odpsim.Addr(i * odpsim.PageSize)
			if err := epPeer.Get(p, peerMem+off, globalMem+off, 64); err != nil {
				return
			}
		}

		// Global lock: READ the lock word, think, then SEND.
		lockOff := odpsim.Addr(mem / 2)
		rd := epPeer.GetAsync(peerMem+lockOff, globalMem+lockOff, 8)
		p.Sleep(cl.Eng.Uniform(100*odpsim.Microsecond, 6*odpsim.Millisecond))
		snd := epPeer.SendAsync(peerMem, 16)
		epHome.PostRecv(globalMem, odpsim.PageSize)
		if err := peer.WaitAll(p, []odpsim.Request{rd, snd}); err != nil {
			return
		}
		total = p.Now()
	})
	cl.Eng.MustRun()
	return total, epPeer.QP().Stats.Timeouts > 0
}

func trial(label string, ucfg odpsim.UCXConfig, trials int) {
	var times []float64
	slow := 0
	for i := 0; i < trials; i++ {
		tt, timedOut := initDSM(int64(1000+i*613), ucfg)
		times = append(times, tt.Seconds())
		if timedOut {
			slow++
		}
	}
	s := odpsim.Summarize(times)
	fmt.Printf("%-38s mean=%6.3fs  p50=%6.3fs  max=%6.3fs  dammed=%d/%d\n",
		label, s.Mean, s.P50, s.Max, slow, trials)
}

func main() {
	const trials = 25
	fmt.Printf("mini-DSM init on KNL, %d trials each:\n\n", trials)

	off := odpsim.DefaultUCXConfig()
	trial("ODP disabled", off, trials)

	on := off
	on.EnableODP = true
	trial("ODP enabled (UCX defaults)", on, trials)

	tuned := on
	tuned.MinRNRDelay = odpsim.SmallestRNRDelay
	trial("ODP enabled + smallest RNR delay", tuned, trials)

	fmt.Println("\nwith UCX defaults the enabled runs split into two groups — the slow")
	fmt.Println("group rode out a ≈2 s damming timeout (Figure 12); the RNR tuning")
	fmt.Println("narrows the vulnerable window from ≈3.4 ms to the ≈0.5 ms client-side")
	fmt.Println("window, shrinking the slow group accordingly.")
}
