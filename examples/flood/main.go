// Command flood reproduces the paper's second pitfall — packet flood
// (§VI) — by issuing READs from many QPs whose responses fault
// simultaneously on the client side. It prints the per-page completion
// progress (Figure 11's view), the retransmission counts behind
// Figure 9b, and the flood detector's verdict.
package main

import (
	"fmt"

	"odpsim"
)

func main() {
	// Figure 11a setup: 128 QPs, one 32-byte READ each, all buffer slots
	// in a single page, client-side ODP, C_ACK = 18.
	cfg := odpsim.DefaultBench()
	cfg.Mode = odpsim.ClientODP
	cfg.Size = 32
	cfg.NumQPs = 128
	cfg.NumOps = 128
	cfg.CACK = 18
	cfg.WithCapture = true
	r := odpsim.RunMicrobench(cfg)

	fmt.Printf("128 QPs × 1 READ, one page, client-side ODP:\n")
	fmt.Printf("  exec=%v  retransmissions=%d  discarded responses≈%d\n",
		r.ExecTime, r.Retransmits, r.SpuriousTotal)

	// Completion progress: the page fault resolves in well under a
	// millisecond, yet the earliest operations stay stuck for
	// milliseconds — the update failure of page statuses.
	buckets := map[string][2]int{}
	for i, ct := range r.CompletionTime {
		k := "ops   0– 31"
		switch {
		case i >= 96:
			k = "ops  96–127"
		case i >= 64:
			k = "ops  64– 95"
		case i >= 32:
			k = "ops  32– 63"
		}
		b := buckets[k]
		b[0]++
		if ms := int(ct / odpsim.Millisecond); ms > b[1] {
			b[1] = ms
		}
		buckets[k] = b
	}
	fmt.Println("  last completion per posting quartile (LIFO status updates):")
	for _, k := range []string{"ops   0– 31", "ops  32– 63", "ops  64– 95", "ops  96–127"} {
		fmt.Printf("    %s: ≤%d ms\n", k, buckets[k][1]+1)
	}

	// Scale up: the Figure-9 regime — fixed work, growing QP count.
	fmt.Println()
	fmt.Println("fixed 2048 READs across growing QP counts (Figure 9's regime):")
	for _, n := range []int{1, 8, 64, 128} {
		c := odpsim.DefaultBench()
		c.Mode = odpsim.ClientODP
		c.NumOps = 2048
		c.NumQPs = n
		c.CACK = 18
		c.Seed = int64(n)
		rr := odpsim.RunMicrobench(c)
		fmt.Printf("  %4d QPs: exec=%-10v packets=%-8d retransmissions=%d\n",
			n, rr.ExecTime, rr.PacketsOnWire, rr.Retransmits)
	}

	if inc := odpsim.DetectFlood(r.Cap, 2*odpsim.Millisecond, 64); len(inc) > 0 {
		fmt.Printf("\nflood detector: %s\n", inc[0])
	}
	fmt.Println("\nworkaround guidance (§IX-A): re-issue stalled operations — the page")
	fmt.Println("fault itself is already resolved — and avoid ODP regions shared by many QPs.")
}
