// Command quickstart shows the smallest end-to-end use of odpsim: build a
// two-node ConnectX-4 cluster, register an On-Demand-Paging memory region,
// issue one RDMA READ, and inspect the captured packet workflow — the
// simulator's equivalent of the paper's Figure 1.
package main

import (
	"fmt"
	"log"
	"os"

	"odpsim"
)

func main() {
	// A two-node KNL system (ConnectX-4 FDR, the paper's testbed).
	cl := odpsim.KNL().Build(42, 2)
	client := odpsim.OpenDevice(cl.Nodes[0])
	server := odpsim.OpenDevice(cl.Nodes[1])

	// ibdump-style capture of everything on the fabric.
	cap := odpsim.AttachCapture(cl.Fab)

	// Verbs boilerplate: PDs, CQs, a connected QP pair.
	pdC, pdS := client.AllocPD(), server.AllocPD()
	cqC, cqS := client.CreateCQ(), server.CreateCQ()
	qpC, qpS := pdC.CreateQP(cqC, cqC), pdS.CreateQP(cqS, cqS)

	attr := odpsim.QPAttr{
		Timeout:     1, // C_ACK (clamped to the vendor minimum)
		RetryCnt:    7, // C_retry
		MinRNRTimer: odpsim.FromMillis(1.28),
	}
	ca, sa := attr, attr
	ca.DestLID, ca.DestQPNum = server.LID(), qpS.Num()
	sa.DestLID, sa.DestQPNum = client.LID(), qpC.Num()
	must(qpC.Connect(ca))
	must(qpS.Connect(sa))

	// Buffers: the client's is pinned, the server's uses Explicit ODP,
	// so the READ triggers a server-side network page fault.
	lbuf := cl.Nodes[0].AS.Alloc(odpsim.PageSize)
	rbuf := cl.Nodes[1].AS.Alloc(odpsim.PageSize)
	_, err := pdC.RegisterMR(lbuf, odpsim.PageSize, odpsim.AccessLocalWrite)
	must(err)
	_, err = pdS.RegisterMR(rbuf, odpsim.PageSize, odpsim.AccessRemoteRead|odpsim.AccessOnDemand)
	must(err)

	// One 100-byte RDMA READ.
	must(qpC.PostRead(1, lbuf, rbuf, 100))
	cl.Eng.Run()

	cqes := cqC.Poll(0)
	fmt.Printf("completion: %s after %v\n\n", cqes[0].Status, cqes[0].At)
	fmt.Println("captured workflow (compare with the paper's Figure 1, left):")
	cap.RenderFlow(os.Stdout, "node0")
	fmt.Printf("\nserver page faults resolved: %d, RNR NAKs sent: %d\n",
		cl.Nodes[1].AS.FaultsResolved, cl.Nodes[1].RNRNakSent)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
