// Command offline demonstrates the workflow the paper's authors were
// forced into (§IX-A: "detecting the pitfalls becomes extremely hard
// without observing the raw packets"): capture a run to a trace file,
// then analyze it offline — here, re-loading the binary capture and
// running the damming detector over it, plus an MPI-RMA reproduction of
// the ArgoDSM lock pattern.
package main

import (
	"bytes"
	"fmt"
	"log"

	"odpsim"
)

func main() {
	// Phase 1: an MPI application run with ODP enabled, captured.
	cl := odpsim.KNL().Build(3, 2)
	cap := odpsim.AttachCapture(cl.Fab)
	ucfg := odpsim.DefaultUCXConfig()
	ucfg.EnableODP = true

	var comm *odpsim.MPIComm
	var win *odpsim.MPIWin
	cl.Eng.Go("init", func(p *odpsim.Proc) {
		comm = odpsim.NewMPIComm(p, cl, ucfg)
		win = comm.CreateWin(p, 64*odpsim.PageSize)
	})
	cl.Eng.MustRun()

	// The ArgoDSM pattern over MPI RMA: one thread GETs a fresh window
	// page (which faults on the target), while another thread of the same
	// rank takes the window lock 1 ms later — inside the pending window.
	r1 := comm.Rank(1)
	cl.Eng.Go("getter", func(p *odpsim.Proc) {
		if err := win.Get(p, r1, win.Base(1), 0, 32*odpsim.PageSize, 8); err != nil {
			log.Fatal(err)
		}
	})
	cl.Eng.Go("locker", func(p *odpsim.Proc) {
		p.Sleep(odpsim.Millisecond)
		if err := win.Lock(p, r1, 0); err != nil {
			log.Fatal(err)
		}
		if err := win.Unlock(p, r1, 0); err != nil {
			log.Fatal(err)
		}
	})
	cl.Eng.MustRun()

	fmt.Printf("run finished at %v; %d packets captured\n", cl.Eng.Now(), cap.Total())

	// Phase 2: save the capture (the ibdump .pcap step)…
	var traceFile bytes.Buffer
	if err := cap.WriteTrace(&traceFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary trace: %d bytes\n", traceFile.Len())

	// Phase 3: …and analyze it offline, away from the cluster.
	records, err := odpsim.ReadTrace(&traceFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %d records\n", len(records))

	reloaded := odpsim.CaptureFromRecords(records)
	if incs := odpsim.DetectDamming(reloaded, 100*odpsim.Millisecond); len(incs) > 0 {
		fmt.Println("offline analysis found packet damming:")
		for _, inc := range incs {
			fmt.Printf("  %s\n", inc)
		}
	} else {
		fmt.Println("offline analysis: no damming in this trace (timing-dependent —")
		fmt.Println("try other seeds; the GET and the lock raced outside the window).")
	}
}
