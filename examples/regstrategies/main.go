// Command regstrategies compares the memory-registration management
// strategies of the paper's §VIII-A — direct pinning, Tezuka et al.'s
// pin-down cache, Zhou et al.'s batched deregistration, Frey & Alonso's
// copy path, and ODP — on a hot/cold buffer-reuse workload: the
// performance/productivity tradeoff that motivates ODP in the first
// place.
package main

import (
	"fmt"

	"odpsim"
)

func main() {
	const (
		nBuffers = 64
		bufSize  = 4 * odpsim.PageSize
		accesses = 2000
	)
	fmt.Printf("%d accesses over %d buffers of %d KiB (90%% to a hot quarter):\n\n",
		accesses, nBuffers, bufSize/1024)

	type mk func(*odpsim.Engine, *odpsim.RNIC) odpsim.RegStrategy
	costs := odpsim.DefaultRegCosts()
	for _, m := range []mk{
		func(_ *odpsim.Engine, n *odpsim.RNIC) odpsim.RegStrategy {
			return odpsim.NewDirectPin(n, costs)
		},
		func(_ *odpsim.Engine, n *odpsim.RNIC) odpsim.RegStrategy {
			return odpsim.NewPinDownCache(n, costs, 32*bufSize)
		},
		func(_ *odpsim.Engine, n *odpsim.RNIC) odpsim.RegStrategy {
			return odpsim.NewBatchedDereg(n, costs, 32*bufSize, 8)
		},
		func(_ *odpsim.Engine, n *odpsim.RNIC) odpsim.RegStrategy {
			return odpsim.NewCopyPath(n, costs, 256<<10, 1<<20)
		},
		func(_ *odpsim.Engine, n *odpsim.RNIC) odpsim.RegStrategy {
			return odpsim.NewODPOnce(n)
		},
	} {
		cl := odpsim.ReedbushH().Build(7, 1)
		s := m(cl.Eng, cl.Nodes[0])
		trace := odpsim.SyntheticTrace(cl.Eng, cl.Nodes[0], nBuffers, bufSize, accesses, 0.25)
		fmt.Println(odpsim.RunRegWorkload(cl.Eng, s, trace))
	}

	fmt.Println()
	fmt.Println("ODP wins on both axes here — zero pinned footprint and near-zero")
	fmt.Println("registration time — which is exactly why it is attractive, and why")
	fmt.Println("its pitfalls (run the damming and flood examples) matter so much.")
}
